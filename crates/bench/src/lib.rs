//! Shared infrastructure for the paper-figure benchmark harnesses.
//!
//! Every figure and table of the EGG-SynC paper's evaluation has a bench
//! target in `benches/` that regenerates it: a workload generator, the
//! parameter sweep, and a printer that emits the same rows/series the
//! paper reports. Each harness prints a human-readable table to stdout
//! and writes a machine-readable JSON series to
//! `target/paper_results/<experiment>.json`.
//!
//! Host context: this reproduction runs on a single CPU core with a
//! *simulated* GPU, so two time columns are reported — `wall` (host
//! seconds, which cannot show device parallelism) and `sim` (the cost
//! model's estimate on the paper's RTX 3090, which carries the paper's
//! relative shape for the GPU algorithms). Dataset sizes are scaled down
//! accordingly; EXPERIMENTS.md records paper-vs-measured per figure.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use egg_data::Dataset;
use egg_sync_core::instrument::{KernelSummary, Stage, StageTimings, UpdateCounters};
use egg_sync_core::{ClusterAlgorithm, Clustering};
use serde::Serialize;

/// One measured run: the unit every figure's series is built from.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Algorithm display name.
    pub algorithm: String,
    /// Sweep coordinate (n, d, k, σ, ε, … — the figure's x-axis).
    pub x: f64,
    /// Host wall-clock seconds.
    pub wall_seconds: f64,
    /// Simulated-GPU seconds (None for CPU algorithms).
    pub sim_seconds: Option<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Clusters found.
    pub clusters: usize,
    /// Peak auxiliary-structure bytes.
    pub structure_bytes: usize,
    /// Per-stage host wall-clock breakdown of the run.
    pub stages: StageTimings,
    /// Per-stage simulated-GPU breakdown (GPU-backed algorithms only).
    pub sim_stages: Option<StageTimings>,
    /// Kernel launch/word totals (GPU-backed algorithms only).
    pub kernel: Option<KernelSummary>,
    /// Host execution-engine worker threads, when the engine ran.
    pub engine_threads: Option<usize>,
    /// EGG-update work counters (zero for non-EGG algorithms).
    pub counters: UpdateCounters,
}

/// Run one algorithm on one dataset and record a [`Measurement`].
pub fn measure(algo: &dyn ClusterAlgorithm, data: &Dataset, x: f64) -> Measurement {
    let start = Instant::now();
    let result = algo.cluster(data);
    let wall = start.elapsed().as_secs_f64();
    measurement_from(algo.name(), x, wall, &result)
}

/// Build a [`Measurement`] from an existing clustering result.
pub fn measurement_from(name: &str, x: f64, wall: f64, result: &Clustering) -> Measurement {
    Measurement {
        algorithm: name.to_owned(),
        x,
        wall_seconds: wall,
        sim_seconds: result.trace.total_sim_seconds,
        iterations: result.iterations,
        clusters: result.num_clusters,
        structure_bytes: result.trace.peak_structure_bytes,
        stages: result.trace.stages,
        sim_stages: result.trace.sim_stages,
        kernel: result.trace.kernel_summary,
        engine_threads: result.trace.engine_threads,
        counters: result.trace.update_counters,
    }
}

fn secs_to_ns(seconds: f64) -> u64 {
    (seconds * 1e9).round().max(0.0) as u64
}

/// One row of the cross-PR benchmark ledger `BENCH_egg.json`: which
/// experiment and method produced the run, its workload shape (n, d,
/// threads), a unix-milliseconds timestamp (rows appended later must not
/// go backwards — the regression checker validates monotonicity per
/// group), the per-stage nanoseconds that trend dashboards diff across
/// commits, and the EGG-update work counters (all-zero for non-EGG
/// methods).
#[allow(clippy::too_many_arguments)]
pub fn bench_ledger_row(
    experiment: &str,
    method: &str,
    n: usize,
    d: usize,
    threads: usize,
    iterations: usize,
    wall_seconds: f64,
    stages: &StageTimings,
    counters: &UpdateCounters,
) -> serde_json::Value {
    let stages_ns = serde_json::json!({
        "allocating": secs_to_ns(stages.get(Stage::Allocating)),
        "build_structure": secs_to_ns(stages.get(Stage::BuildStructure)),
        "update": secs_to_ns(stages.get(Stage::Update)),
        "extra_check": secs_to_ns(stages.get(Stage::ExtraCheck)),
        "clustering": secs_to_ns(stages.get(Stage::Clustering)),
        "free_memory": secs_to_ns(stages.get(Stage::FreeMemory)),
        "halo_exchange": secs_to_ns(stages.get(Stage::HaloExchange)),
        "exec_dispatch": secs_to_ns(stages.get(Stage::ExecDispatch)),
        "halo_overlap": secs_to_ns(stages.get(Stage::HaloOverlap)),
    });
    let counters_json = serde_json::json!({
        "summary_cells": counters.summary_cells,
        "point_pairs": counters.point_pairs,
        "sin_calls_avoided": counters.sin_calls_avoided,
        "moved_points": counters.moved_points,
        "dirty_cells": counters.dirty_cells,
        "cells_skipped": counters.cells_skipped,
        "simd_lanes": counters.simd_lanes,
        "simd_remainder_lanes": counters.simd_remainder_lanes,
        "shard_count": counters.shard_count,
        "halo_movers": counters.halo_movers,
        "halo_cells": counters.halo_cells,
        "exec_dispatches": counters.exec_dispatches,
    });
    let timestamp_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    serde_json::json!({
        "experiment": experiment,
        "method": method,
        "n": n,
        "d": d,
        "threads": threads,
        "iterations": iterations,
        "timestamp_ms": timestamp_ms,
        "wall_ns": secs_to_ns(wall_seconds),
        "stages_ns": stages_ns,
        "counters": counters_json,
    })
}

/// Ledger row built from a [`Measurement`]: the base
/// [`bench_ledger_row`] plus, for GPU-backed runs, the deterministic
/// simulated-time stage breakdown (`sim_*` keys inside `stages_ns` —
/// tracked by `scripts/check_bench_regression.py` like the host stages,
/// but noise-free because the cost model is a pure function of the
/// kernels' operation counts) and the kernel-level launch/word totals
/// the fused-pipeline benches diff across variants.
pub fn bench_ledger_row_for(experiment: &str, m: &Measurement, d: usize) -> serde_json::Value {
    let mut row = bench_ledger_row(
        experiment,
        &m.algorithm,
        m.x as usize,
        d,
        m.engine_threads.unwrap_or(1),
        m.iterations,
        m.wall_seconds,
        &m.stages,
        &m.counters,
    );
    let serde_json::Value::Object(entries) = &mut row else {
        return row;
    };
    if let Some(sim) = &m.sim_stages {
        if let Some((_, serde_json::Value::Object(stages))) =
            entries.iter_mut().find(|(k, _)| k == "stages_ns")
        {
            for (key, stage) in [
                ("sim_allocating", Stage::Allocating),
                ("sim_build_structure", Stage::BuildStructure),
                ("sim_update", Stage::Update),
                ("sim_extra_check", Stage::ExtraCheck),
                ("sim_clustering", Stage::Clustering),
            ] {
                let ns = secs_to_ns(sim.get(stage));
                stages.push((key.to_owned(), serde_json::to_value(&ns)));
            }
        }
    }
    if let Some(k) = &m.kernel {
        for (key, v) in [
            ("kernel_launches", k.launches),
            ("kernel_mem_words", k.mem_words),
            ("kernel_coalesced_words", k.coalesced_words),
            ("kernel_atomics", k.atomics),
        ] {
            entries.push((key.to_owned(), serde_json::to_value(&v)));
        }
    }
    row
}

/// Append ledger rows to the JSON array at `path`, creating the file if
/// needed. The in-tree `serde_json` shim is write-only, so existing
/// content is preserved by splicing the new rows in front of the array's
/// closing bracket instead of parse-and-rewrite.
pub fn append_bench_ledger_at(
    path: &std::path::Path,
    rows: &[serde_json::Value],
) -> std::io::Result<()> {
    let mut text = std::fs::read_to_string(path).unwrap_or_default();
    if text.rfind(']').is_none() {
        text = "[\n]\n".to_owned();
    }
    let insert_at = text.rfind(']').expect("array close ensured above");
    let has_rows = text[..insert_at].contains('}');
    let mut payload = String::new();
    for (i, row) in rows.iter().enumerate() {
        if has_rows || i > 0 {
            payload.push(',');
        }
        payload.push('\n');
        payload.push_str(&serde_json::to_string(row).expect("serializable"));
    }
    payload.push('\n');
    text.insert_str(insert_at, &payload);
    std::fs::write(path, text)
}

/// Append rows to the default ledger `target/paper_results/BENCH_egg.json`
/// and return its path.
pub fn append_bench_ledger(rows: &[serde_json::Value]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_egg.json");
    append_bench_ledger_at(&path, rows)?;
    Ok(path)
}

/// Collects an experiment's measurements, prints the paper-style table and
/// persists the JSON series.
pub struct Experiment {
    /// Experiment id, e.g. `fig3a_scalability`.
    pub name: String,
    /// Label of the sweep coordinate, e.g. `n` or `epsilon`.
    pub x_label: String,
    rows: Vec<Measurement>,
}

impl Experiment {
    /// Start an experiment.
    pub fn new(name: &str, x_label: &str) -> Self {
        println!("=== {name} ===");
        Self {
            name: name.to_owned(),
            x_label: x_label.to_owned(),
            rows: Vec::new(),
        }
    }

    /// Record (and echo) one measurement.
    pub fn push(&mut self, m: Measurement) {
        let sim = m
            .sim_seconds
            .map_or_else(|| "      -".to_owned(), |s| format!("{s:>9.6}"));
        println!(
            "  {:<10} {}={:<9} wall {:>9.3}s  sim {}s  iters {:>5}  clusters {:>5}",
            m.algorithm, self.x_label, m.x, m.wall_seconds, sim, m.iterations, m.clusters
        );
        self.rows.push(m);
    }

    /// All measurements so far.
    pub fn rows(&self) -> &[Measurement] {
        &self.rows
    }

    /// Wall-clock seconds of the named series at a given x, if measured.
    pub fn wall_of(&self, algorithm: &str, x: f64) -> Option<f64> {
        self.rows
            .iter()
            .find(|m| m.algorithm == algorithm && m.x == x)
            .map(|m| m.wall_seconds)
    }

    /// Print the final grouped table and write the JSON series.
    pub fn finish(self) {
        // grouped summary, one line per (algorithm, x)
        println!("\n{} summary ({} on the x-axis):", self.name, self.x_label);
        let mut algorithms: Vec<&str> = Vec::new();
        for m in &self.rows {
            if !algorithms.contains(&m.algorithm.as_str()) {
                algorithms.push(m.algorithm.as_str());
            }
        }
        for algo in algorithms {
            let series: Vec<String> = self
                .rows
                .iter()
                .filter(|m| m.algorithm == algo)
                .map(|m| format!("{}={} → {:.3}s", self.x_label, m.x, m.wall_seconds))
                .collect();
            println!("  {:<10} {}", algo, series.join(", "));
        }
        if let Err(e) = self.write_json() {
            eprintln!("warning: could not persist results: {e}");
        }
    }

    fn write_json(&self) -> std::io::Result<()> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.name));
        let mut file = std::fs::File::create(&path)?;
        let payload = serde_json::json!({
            "experiment": self.name,
            "x_label": self.x_label,
            "rows": self.rows,
        });
        file.write_all(
            serde_json::to_string_pretty(&payload)
                .expect("serializable")
                .as_bytes(),
        )?;
        println!("(series written to {})\n", path.display());
        Ok(())
    }
}

/// Directory where all figure harnesses persist their JSON series:
/// `<workspace>/target/paper_results`. Bench binaries run with the crate
/// directory as CWD, so the path is anchored at this crate's manifest and
/// resolved to the workspace's target directory (or `CARGO_TARGET_DIR`).
pub fn results_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"));
    target.join("paper_results")
}

/// The paper's default synthetic workload at size `n` (2-D, 5 Gaussian
/// clusters, σ = 5), normalized.
pub fn default_synthetic(n: usize) -> Dataset {
    egg_data::generator::GaussianSpec {
        n,
        ..egg_data::generator::GaussianSpec::default()
    }
    .generate_normalized()
    .0
}

/// Scale factor for quick runs: set `EGG_BENCH_SCALE` (e.g. `0.25`) to
/// shrink every harness's dataset sizes.
pub fn scaled(n: usize) -> usize {
    let factor: f64 = std::env::var("EGG_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    ((n as f64 * factor) as usize).max(64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egg_sync_core::EggSync;

    #[test]
    fn measure_records_everything() {
        let data = default_synthetic(200);
        let m = measure(&EggSync::new(0.05), &data, 200.0);
        assert_eq!(m.algorithm, "EGG-SynC");
        assert!(m.wall_seconds > 0.0);
        assert!(m.sim_seconds.unwrap() > 0.0);
        assert!(m.clusters >= 1);
    }

    #[test]
    fn experiment_lookup() {
        let data = default_synthetic(150);
        let mut exp = Experiment::new("unit_test", "n");
        exp.push(measure(&EggSync::new(0.05), &data, 150.0));
        assert!(exp.wall_of("EGG-SynC", 150.0).is_some());
        assert!(exp.wall_of("EGG-SynC", 99.0).is_none());
        assert!(exp.wall_of("SynC", 150.0).is_none());
    }

    #[test]
    fn scaled_respects_floor() {
        assert!(scaled(10) >= 64);
    }

    #[test]
    fn ledger_append_creates_then_splices() {
        let path = std::env::temp_dir().join(format!("egg_ledger_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let stages = StageTimings::default();
        let counters = UpdateCounters::default();
        let row = |m: &str| bench_ledger_row("unit", m, 100, 2, 1, 3, 0.5, &stages, &counters);
        append_bench_ledger_at(&path, &[row("a"), row("b")]).unwrap();
        append_bench_ledger_at(&path, &[row("c")]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        // three rows survive two appends, in a well-formed array
        assert_eq!(text.matches("\"experiment\":").count(), 3);
        assert_eq!(text.matches('[').count(), 1);
        assert!(text.trim_end().ends_with(']'));
        for m in ["\"a\"", "\"b\"", "\"c\""] {
            assert!(text.contains(m), "missing row {m}");
        }
        assert!(text.contains("\"wall_ns\":500000000"));
    }

    #[test]
    fn measurement_row_carries_sim_stages_and_kernel_totals() {
        let data = default_synthetic(150);
        let gpu = measure(&EggSync::new(0.05), &data, 150.0);
        let text = serde_json::to_string(&bench_ledger_row_for("unit", &gpu, 2)).unwrap();
        for key in [
            "\"sim_build_structure\":",
            "\"sim_update\":",
            "\"sim_extra_check\":",
            "\"kernel_launches\":",
            "\"kernel_mem_words\":",
            "\"kernel_coalesced_words\":",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        // host runs carry neither a simulated clock nor kernels
        let host = measure(&EggSync::host(0.05, Some(1)), &data, 150.0);
        let htext = serde_json::to_string(&bench_ledger_row_for("unit", &host, 2)).unwrap();
        assert!(!htext.contains("sim_update"));
        assert!(!htext.contains("kernel_launches"));
        assert!(htext.contains("\"update\":"));
    }

    #[test]
    fn ledger_row_reports_stage_nanos() {
        let mut stages = StageTimings::default();
        stages.add(Stage::Update, 0.25);
        let counters = UpdateCounters {
            moved_points: 9,
            dirty_cells: 4,
            cells_skipped: 2,
            ..UpdateCounters::default()
        };
        let row = bench_ledger_row("unit", "EGG-SynC", 1000, 4, 2, 7, 1.0, &stages, &counters);
        let text = serde_json::to_string(&row).unwrap();
        assert!(text.contains("\"update\":250000000"));
        assert!(text.contains("\"exec_dispatch\":"));
        assert!(text.contains("\"halo_overlap\":"));
        assert!(text.contains("\"exec_dispatches\":"));
        assert!(text.contains("\"threads\":2"));
        assert!(text.contains("\"d\":4"));
        assert!(text.contains("\"moved_points\":9"));
        assert!(text.contains("\"dirty_cells\":4"));
        assert!(text.contains("\"cells_skipped\":2"));
    }
}
