//! Property-based tests of the spatial substrate.

use egg_spatial::distance::{euclidean, row, squared_euclidean, within};
use egg_spatial::{Mbr, RTree};
use proptest::prelude::*;

fn cloud(dim: usize, max_points: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, dim..=dim * max_points).prop_map(move |mut v| {
        v.truncate(v.len() / dim * dim);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn triangle_inequality(a in prop::collection::vec(-5.0f64..5.0, 3),
                           b in prop::collection::vec(-5.0f64..5.0, 3),
                           c in prop::collection::vec(-5.0f64..5.0, 3)) {
        prop_assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-9);
    }

    #[test]
    fn within_matches_distance(a in prop::collection::vec(-5.0f64..5.0, 2),
                               b in prop::collection::vec(-5.0f64..5.0, 2),
                               r in 0.0f64..10.0) {
        prop_assert_eq!(within(&a, &b, r), euclidean(&a, &b) <= r);
    }

    #[test]
    fn mbr_contains_all_its_points(coords in cloud(2, 40)) {
        prop_assume!(!coords.is_empty());
        let mbr = Mbr::from_points(&coords, 2).unwrap();
        for p in coords.chunks_exact(2) {
            prop_assert!(mbr.contains_point(p));
            prop_assert_eq!(mbr.min_sq_dist_to_point(p), 0.0);
        }
    }

    #[test]
    fn mbr_expansion_is_monotone(coords in cloud(3, 20), extra in prop::collection::vec(-20.0f64..20.0, 3)) {
        prop_assume!(!coords.is_empty());
        let base = Mbr::from_points(&coords, 3).unwrap();
        let mut grown = base.clone();
        grown.expand_to_point(&extra);
        prop_assert!(grown.area() >= base.area() - 1e-12);
        prop_assert!(grown.contains_point(&extra));
        for p in coords.chunks_exact(3) {
            prop_assert!(grown.contains_point(p));
        }
    }

    #[test]
    fn mbr_intersection_symmetric(a in cloud(2, 10), b in cloud(2, 10)) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let ma = Mbr::from_points(&a, 2).unwrap();
        let mb = Mbr::from_points(&b, 2).unwrap();
        prop_assert_eq!(ma.intersects(&mb), mb.intersects(&ma));
    }

    #[test]
    fn rtree_returns_exactly_the_ball(coords in cloud(2, 80), r in 0.0f64..8.0) {
        prop_assume!(!coords.is_empty());
        let n = coords.len() / 2;
        let tree = RTree::bulk_load(&coords, 2, 6);
        let center = row(&coords, 2, n / 2).to_vec();
        let mut got = tree.ball_indices(&center, r);
        got.sort_unstable();
        let expected: Vec<u32> = (0..n)
            .filter(|&i| squared_euclidean(&center, row(&coords, 2, i)) <= r * r)
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rtree_insert_preserves_all_points(coords in cloud(3, 50)) {
        let n = coords.len() / 3;
        let mut tree = RTree::new(3, 4);
        for p in coords.chunks_exact(3) {
            tree.insert(p);
        }
        prop_assert_eq!(tree.len(), n);
        // a huge ball returns everything
        if n > 0 {
            let center = row(&coords, 3, 0);
            prop_assert_eq!(tree.ball_indices(center, 1e6).len(), n);
        }
    }
}
