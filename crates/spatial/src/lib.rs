//! # egg-spatial — spatial substrate for synchronization clustering
//!
//! Geometry the EGG-SynC reproduction depends on:
//!
//! * [`Mbr`]: minimum bounding rectangles with the point–rectangle minimum
//!   distance `dist(MBR, p)` used by the paper's exact termination
//!   criterion (Definition 4.2).
//! * [`distance`]: Euclidean distance kernels over row-major point slices.
//! * [`RTree`]: a from-scratch R-Tree with configurable fanout `B`
//!   (FSynC's index, Chen 2018) supporting one-by-one insertion with
//!   quadratic splits and Morton-packed bulk loading, plus ε-ball range
//!   queries.
//!
//! The R-Tree is the *CPU comparator's* index: FSynC rebuilds it every
//! iteration because synchronization moves every point. The paper's own
//! contribution replaces it with a GPU-friendly grid (in `egg-sync-core`);
//! this crate exists so the baseline is reproduced faithfully rather than
//! strawmanned.

#![warn(missing_docs)]

pub mod distance;
mod mbr;
mod rtree;

pub use mbr::Mbr;
pub use rtree::{RTree, DEFAULT_FANOUT};
