//! A from-scratch R-Tree (Guttman 1984) with configurable fanout.
//!
//! This is FSynC's index structure (Chen 2018): SynC with the ε-neighborhood
//! query answered by an R-Tree instead of a linear scan. The paper's
//! experiments use a maximum fanout of `B = 100`; FSynC rebuilds the index
//! every iteration because the update moves every point.
//!
//! Two construction paths are provided:
//!
//! * [`RTree::insert`] — classic one-by-one insertion: descend by least
//!   area enlargement, quadratic split on overflow (what the original
//!   FSynC description implies);
//! * [`RTree::bulk_load`] — Morton-order packing, which builds a
//!   better-clustered tree in `O(n log n)` and is what the reproduction's
//!   FSynC uses per iteration by default (strictly a favourable choice *for
//!   the baseline*).
//!
//! Range queries are closed ε-balls: [`RTree::for_each_in_ball`] visits
//! every stored point with `‖p − center‖ ≤ radius`, pruning subtrees whose
//! MBR does not intersect the ball.

use crate::distance::{row, within};
use crate::mbr::Mbr;

/// Maximum entries per node (the paper's `B`) used when none is specified.
pub const DEFAULT_FANOUT: usize = 100;

#[derive(Debug)]
enum Entries {
    /// Point indices into the tree's coordinate array.
    Leaf(Vec<u32>),
    /// Child node ids.
    Inner(Vec<usize>),
}

#[derive(Debug)]
struct Node {
    mbr: Mbr,
    entries: Entries,
}

/// An R-Tree over an owned copy of a row-major point set.
#[derive(Debug)]
pub struct RTree {
    dim: usize,
    fanout: usize,
    min_fill: usize,
    points: Vec<f64>,
    nodes: Vec<Node>,
    root: Option<usize>,
    len: usize,
}

impl RTree {
    /// Create an empty tree for `dim`-dimensional points with maximum node
    /// fanout `fanout` (≥ 2).
    ///
    /// # Panics
    /// Panics if `dim == 0` or `fanout < 2`.
    pub fn new(dim: usize, fanout: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(fanout >= 2, "fanout must be at least 2");
        Self {
            dim,
            fanout,
            min_fill: (fanout * 2 / 5).max(1),
            points: Vec::new(),
            nodes: Vec::new(),
            root: None,
            len: 0,
        }
    }

    /// Build a tree over `coords` (row-major, `dim` columns) by Morton-order
    /// packing: points are sorted by interleaved-bit code of their first
    /// `min(dim, 8)` coordinates, packed into full leaves, and the upper
    /// levels packed recursively.
    pub fn bulk_load(coords: &[f64], dim: usize, fanout: usize) -> Self {
        let mut tree = Self::new(dim, fanout);
        tree.points = coords.to_vec();
        let n = coords.len() / dim;
        tree.len = n;
        if n == 0 {
            return tree;
        }
        let bounds = Mbr::from_points(coords, dim).expect("non-empty");
        let mut order: Vec<u32> = (0..n as u32).collect();
        let codes: Vec<u64> = (0..n)
            .map(|i| morton_code(row(coords, dim, i), &bounds))
            .collect();
        order.sort_unstable_by_key(|&i| codes[i as usize]);

        // pack leaves
        let mut level: Vec<usize> = order
            .chunks(fanout)
            .map(|chunk| {
                let mut mbr = Mbr::from_point(row(&tree.points, dim, chunk[0] as usize));
                for &i in &chunk[1..] {
                    mbr.expand_to_point(row(&tree.points, dim, i as usize));
                }
                tree.push_node(Node {
                    mbr,
                    entries: Entries::Leaf(chunk.to_vec()),
                })
            })
            .collect();

        // pack upper levels
        while level.len() > 1 {
            level = level
                .chunks(fanout)
                .map(|chunk| {
                    let mut mbr = tree.nodes[chunk[0]].mbr.clone();
                    for &c in &chunk[1..] {
                        let child = tree.nodes[c].mbr.clone();
                        mbr.expand_to_mbr(&child);
                    }
                    tree.push_node(Node {
                        mbr,
                        entries: Entries::Inner(chunk.to_vec()),
                    })
                })
                .collect();
        }
        tree.root = Some(level[0]);
        tree
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of stored points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maximum entries per node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The coordinates of stored point `idx`.
    pub fn point(&self, idx: u32) -> &[f64] {
        row(&self.points, self.dim, idx as usize)
    }

    /// Height of the tree (0 for empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let Some(mut node) = self.root else { return 0 };
        let mut h = 1;
        loop {
            match &self.nodes[node].entries {
                Entries::Leaf(_) => return h,
                Entries::Inner(children) => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Approximate heap footprint of the index in bytes (coordinates plus
    /// node storage) — used by the space-usage experiment (Fig. 3h).
    pub fn size_bytes(&self) -> usize {
        let coords = self.points.len() * std::mem::size_of::<f64>();
        let nodes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + 2 * self.dim * std::mem::size_of::<f64>()
                    + match &n.entries {
                        Entries::Leaf(v) => v.capacity() * std::mem::size_of::<u32>(),
                        Entries::Inner(v) => v.capacity() * std::mem::size_of::<usize>(),
                    }
            })
            .sum();
        coords + nodes
    }

    fn push_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Insert a point, growing the tree Guttman-style (least-enlargement
    /// descent, quadratic split on overflow). Returns the point's index.
    pub fn insert(&mut self, point: &[f64]) -> u32 {
        assert_eq!(point.len(), self.dim, "point dimensionality mismatch");
        let idx = self.len as u32;
        self.points.extend_from_slice(point);
        self.len += 1;

        match self.root {
            None => {
                let node = self.push_node(Node {
                    mbr: Mbr::from_point(point),
                    entries: Entries::Leaf(vec![idx]),
                });
                self.root = Some(node);
            }
            Some(root) => {
                if let Some(sibling) = self.insert_rec(root, idx) {
                    // root split: grow the tree by one level
                    let mut mbr = self.nodes[root].mbr.clone();
                    mbr.expand_to_mbr(&self.nodes[sibling].mbr.clone());
                    let new_root = self.push_node(Node {
                        mbr,
                        entries: Entries::Inner(vec![root, sibling]),
                    });
                    self.root = Some(new_root);
                }
            }
        }
        idx
    }

    /// Recursive insertion; returns the id of a new sibling if `node` split.
    fn insert_rec(&mut self, node: usize, idx: u32) -> Option<usize> {
        let point = row(&self.points, self.dim, idx as usize).to_vec();
        self.nodes[node].mbr.expand_to_point(&point);
        match &mut self.nodes[node].entries {
            Entries::Leaf(items) => {
                items.push(idx);
                if items.len() > self.fanout {
                    return Some(self.split_leaf(node));
                }
                None
            }
            Entries::Inner(children) => {
                let children = children.clone();
                let target = self.choose_subtree(&children, &point);
                if let Some(sibling) = self.insert_rec(target, idx) {
                    if let Entries::Inner(children) = &mut self.nodes[node].entries {
                        children.push(sibling);
                        if children.len() > self.fanout {
                            return Some(self.split_inner(node));
                        }
                    }
                }
                None
            }
        }
    }

    /// Guttman's ChooseLeaf step: the child whose MBR needs the least area
    /// enlargement to cover `point`, ties broken by smaller area.
    fn choose_subtree(&self, children: &[usize], point: &[f64]) -> usize {
        let target_mbr = Mbr::from_point(point);
        let mut best = children[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for &c in children {
            let mbr = &self.nodes[c].mbr;
            let key = (mbr.enlargement(&target_mbr), mbr.area());
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        best
    }

    fn split_leaf(&mut self, node: usize) -> usize {
        let items = match &mut self.nodes[node].entries {
            Entries::Leaf(items) => std::mem::take(items),
            Entries::Inner(_) => unreachable!("split_leaf on inner node"),
        };
        let mbrs: Vec<Mbr> = items
            .iter()
            .map(|&i| Mbr::from_point(row(&self.points, self.dim, i as usize)))
            .collect();
        let (left, right) = quadratic_partition(&mbrs, self.min_fill);
        let mbr_of = |group: &[usize]| {
            let mut m = mbrs[group[0]].clone();
            for &g in &group[1..] {
                m.expand_to_mbr(&mbrs[g]);
            }
            m
        };
        let (lm, rm) = (mbr_of(&left), mbr_of(&right));
        let take = |group: &[usize]| group.iter().map(|&g| items[g]).collect::<Vec<u32>>();
        let right_node = self.push_node(Node {
            mbr: rm,
            entries: Entries::Leaf(take(&right)),
        });
        self.nodes[node].mbr = lm;
        self.nodes[node].entries = Entries::Leaf(take(&left));
        right_node
    }

    fn split_inner(&mut self, node: usize) -> usize {
        let children = match &mut self.nodes[node].entries {
            Entries::Inner(children) => std::mem::take(children),
            Entries::Leaf(_) => unreachable!("split_inner on leaf node"),
        };
        let mbrs: Vec<Mbr> = children
            .iter()
            .map(|&c| self.nodes[c].mbr.clone())
            .collect();
        let (left, right) = quadratic_partition(&mbrs, self.min_fill);
        let mbr_of = |group: &[usize]| {
            let mut m = mbrs[group[0]].clone();
            for &g in &group[1..] {
                m.expand_to_mbr(&mbrs[g]);
            }
            m
        };
        let (lm, rm) = (mbr_of(&left), mbr_of(&right));
        let take = |group: &[usize]| group.iter().map(|&g| children[g]).collect::<Vec<usize>>();
        let right_node = self.push_node(Node {
            mbr: rm,
            entries: Entries::Inner(take(&right)),
        });
        self.nodes[node].mbr = lm;
        self.nodes[node].entries = Entries::Inner(take(&left));
        right_node
    }

    /// Visit every stored point within the closed `radius`-ball around
    /// `center`, calling `f(point_index, coords)`.
    pub fn for_each_in_ball(&self, center: &[f64], radius: f64, mut f: impl FnMut(u32, &[f64])) {
        debug_assert_eq!(center.len(), self.dim);
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            let node = &self.nodes[node];
            if !node.mbr.intersects_ball(center, radius) {
                continue;
            }
            match &node.entries {
                Entries::Leaf(items) => {
                    for &i in items {
                        let p = row(&self.points, self.dim, i as usize);
                        if within(center, p, radius) {
                            f(i, p);
                        }
                    }
                }
                Entries::Inner(children) => stack.extend_from_slice(children),
            }
        }
    }

    /// Collect the indices of all stored points within the closed
    /// `radius`-ball around `center`.
    pub fn ball_indices(&self, center: &[f64], radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_in_ball(center, radius, |i, _| out.push(i));
        out
    }
}

/// Interleave the leading coordinates of `p` (normalized into `bounds`) into
/// a Morton code. Uses at most 8 dimensions and divides 48 bits among them.
fn morton_code(p: &[f64], bounds: &Mbr) -> u64 {
    let dims = p.len().min(8);
    let bits = 48 / dims;
    let scale = (1u64 << bits) - 1;
    let mut code = 0u64;
    for bit in (0..bits).rev() {
        for (d, &x) in p.iter().enumerate().take(dims) {
            let lo = bounds.min()[d];
            let hi = bounds.max()[d];
            let t = if hi > lo { (x - lo) / (hi - lo) } else { 0.0 };
            let cell = (t.clamp(0.0, 1.0) * scale as f64) as u64;
            code = (code << 1) | ((cell >> bit) & 1);
        }
    }
    code
}

/// Guttman's quadratic split: pick the two entries that would waste the most
/// area together as seeds, then assign the rest by least enlargement,
/// forcing `min_fill` into the smaller group. Returns index groups.
fn quadratic_partition(mbrs: &[Mbr], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(mbrs.len() >= 2);
    // seeds: maximal dead area
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..mbrs.len() {
        for j in (i + 1)..mbrs.len() {
            let mut joint = mbrs[i].clone();
            joint.expand_to_mbr(&mbrs[j]);
            let dead = joint.area() - mbrs[i].area() - mbrs[j].area();
            if dead > worst {
                worst = dead;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut left = vec![seed_a];
    let mut right = vec![seed_b];
    let mut left_mbr = mbrs[seed_a].clone();
    let mut right_mbr = mbrs[seed_b].clone();
    let remaining: Vec<usize> = (0..mbrs.len())
        .filter(|&i| i != seed_a && i != seed_b)
        .collect();
    let total = mbrs.len();
    for (k, &i) in remaining.iter().enumerate() {
        let left_needs = min_fill.saturating_sub(left.len());
        let right_needs = min_fill.saturating_sub(right.len());
        let left_over = remaining.len() - k;
        if left_needs >= left_over {
            left.push(i);
            left_mbr.expand_to_mbr(&mbrs[i]);
            continue;
        }
        if right_needs >= left_over {
            right.push(i);
            right_mbr.expand_to_mbr(&mbrs[i]);
            continue;
        }
        let grow_l = left_mbr.enlargement(&mbrs[i]);
        let grow_r = right_mbr.enlargement(&mbrs[i]);
        if grow_l < grow_r || (grow_l == grow_r && left.len() <= right.len()) {
            left.push(i);
            left_mbr.expand_to_mbr(&mbrs[i]);
        } else {
            right.push(i);
            right_mbr.expand_to_mbr(&mbrs[i]);
        }
    }
    debug_assert_eq!(left.len() + right.len(), total);
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(side: usize) -> Vec<f64> {
        let mut coords = Vec::with_capacity(side * side * 2);
        for i in 0..side {
            for j in 0..side {
                coords.push(i as f64);
                coords.push(j as f64);
            }
        }
        coords
    }

    fn brute_force_ball(coords: &[f64], dim: usize, center: &[f64], r: f64) -> Vec<u32> {
        (0..coords.len() / dim)
            .filter(|&i| within(center, row(coords, dim, i), r))
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn empty_tree_queries_nothing() {
        let t = RTree::new(2, 4);
        assert!(t.is_empty());
        assert_eq!(t.ball_indices(&[0.0, 0.0], 10.0), Vec::<u32>::new());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn insert_queries_match_brute_force() {
        let coords = grid_points(12);
        let mut t = RTree::new(2, 4);
        for p in coords.chunks_exact(2) {
            t.insert(p);
        }
        assert_eq!(t.len(), 144);
        for center in [[0.0, 0.0], [5.5, 5.5], [11.0, 3.0]] {
            for r in [0.0, 1.0, 2.5, 20.0] {
                let mut got = t.ball_indices(&center, r);
                got.sort_unstable();
                assert_eq!(
                    got,
                    brute_force_ball(&coords, 2, &center, r),
                    "center {center:?} r {r}"
                );
            }
        }
    }

    #[test]
    fn bulk_load_queries_match_brute_force() {
        let coords = grid_points(12);
        let t = RTree::bulk_load(&coords, 2, 5);
        assert_eq!(t.len(), 144);
        for center in [[0.0, 0.0], [5.5, 5.5], [11.0, 3.0]] {
            for r in [0.0, 1.0, 2.5, 20.0] {
                let mut got = t.ball_indices(&center, r);
                got.sort_unstable();
                assert_eq!(got, brute_force_ball(&coords, 2, &center, r));
            }
        }
    }

    #[test]
    fn duplicate_points_are_all_returned() {
        let mut t = RTree::new(2, 3);
        for _ in 0..10 {
            t.insert(&[1.0, 1.0]);
        }
        assert_eq!(t.ball_indices(&[1.0, 1.0], 0.0).len(), 10);
    }

    #[test]
    fn tree_grows_in_height() {
        let mut t = RTree::new(1, 2);
        for i in 0..64 {
            t.insert(&[i as f64]);
        }
        assert!(
            t.height() >= 3,
            "height {} too small for fanout 2",
            t.height()
        );
        let mut got = t.ball_indices(&[31.5], 2.0);
        got.sort_unstable();
        assert_eq!(got, vec![30, 31, 32, 33]);
    }

    #[test]
    fn high_dimensional_query() {
        let dim = 6;
        let n = 200;
        let coords: Vec<f64> = (0..n * dim)
            .map(|i| ((i * 37) % 101) as f64 / 101.0)
            .collect();
        let t = RTree::bulk_load(&coords, dim, 8);
        let center = row(&coords, dim, 42).to_vec();
        let mut got = t.ball_indices(&center, 0.5);
        got.sort_unstable();
        assert_eq!(got, brute_force_ball(&coords, dim, &center, 0.5));
    }

    #[test]
    fn point_accessor_roundtrips() {
        let mut t = RTree::new(3, 4);
        let idx = t.insert(&[1.0, 2.0, 3.0]);
        assert_eq!(t.point(idx), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn size_bytes_grows_with_points() {
        let small = RTree::bulk_load(&grid_points(4), 2, 8);
        let large = RTree::bulk_load(&grid_points(16), 2, 8);
        assert!(large.size_bytes() > small.size_bytes());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_insert_panics() {
        let mut t = RTree::new(2, 4);
        t.insert(&[1.0]);
    }
}
