//! Minimum bounding rectangles (axis-aligned hyper-rectangles).
//!
//! MBRs play two roles in the reproduction: they are the node regions of the
//! R-Tree (FSynC's index), and they are the conservative reachable-region
//! approximation in the paper's exact termination criterion — a point `q`
//! can only be dragged *towards* its ε/2-neighbors, so `MBR(N_{ε/2}(q))`
//! bounds where the update can move it, and Definition 4.2 checks
//! `dist(MBR, p) ≤ ε`.

use serde::{Deserialize, Serialize};

/// An axis-aligned minimum bounding rectangle in `d` dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mbr {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl Mbr {
    /// The degenerate MBR containing exactly one point.
    pub fn from_point(p: &[f64]) -> Self {
        Self {
            min: p.to_vec(),
            max: p.to_vec(),
        }
    }

    /// The smallest MBR enclosing all `points` (row-major, `dim` columns).
    ///
    /// Returns `None` for an empty point set.
    pub fn from_points(coords: &[f64], dim: usize) -> Option<Self> {
        if coords.is_empty() || dim == 0 {
            return None;
        }
        debug_assert_eq!(coords.len() % dim, 0);
        let mut mbr = Self::from_point(&coords[..dim]);
        for row in coords.chunks_exact(dim).skip(1) {
            mbr.expand_to_point(row);
        }
        Some(mbr)
    }

    /// Dimensionality of the rectangle.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Lower corner.
    #[inline]
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Upper corner.
    #[inline]
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Grow the rectangle to contain `p`.
    pub fn expand_to_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for ((lo, hi), &x) in self.min.iter_mut().zip(&mut self.max).zip(p) {
            if x < *lo {
                *lo = x;
            }
            if x > *hi {
                *hi = x;
            }
        }
    }

    /// Grow the rectangle to contain `other`.
    pub fn expand_to_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(other.dim(), self.dim());
        for i in 0..self.min.len() {
            if other.min[i] < self.min[i] {
                self.min[i] = other.min[i];
            }
            if other.max[i] > self.max[i] {
                self.max[i] = other.max[i];
            }
        }
    }

    /// Whether `p` lies inside the closed rectangle.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        p.iter()
            .zip(self.min.iter().zip(&self.max))
            .all(|(x, (lo, hi))| *lo <= *x && *x <= *hi)
    }

    /// Whether the closed rectangles intersect.
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(other.dim(), self.dim());
        self.min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
            .all(|((alo, ahi), (blo, bhi))| alo <= bhi && blo <= ahi)
    }

    /// Squared minimum Euclidean distance from `p` to the rectangle — zero
    /// when `p` is inside. This is the paper's
    /// `dist(MBR, p) = √(Σᵢ min_{c∈MBR} |pᵢ − cᵢ|²)` without the root.
    pub fn min_sq_dist_to_point(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut acc = 0.0;
        for ((&lo, &hi), &x) in self.min.iter().zip(&self.max).zip(p) {
            let d = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Minimum Euclidean distance from `p` to the rectangle.
    pub fn min_dist_to_point(&self, p: &[f64]) -> f64 {
        self.min_sq_dist_to_point(p).sqrt()
    }

    /// Whether the rectangle intersects the closed `radius`-ball around
    /// `center` — the pruning test for ε-ball range queries and the second
    /// term of Definition 4.2.
    pub fn intersects_ball(&self, center: &[f64], radius: f64) -> bool {
        self.min_sq_dist_to_point(center) <= radius * radius
    }

    /// Hyper-volume of the rectangle (product of side lengths).
    pub fn area(&self) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| hi - lo)
            .product()
    }

    /// Increase in area if the rectangle were expanded to contain `other` —
    /// the R-Tree insertion heuristic ("least enlargement").
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        let mut grown = self.clone();
        grown.expand_to_mbr(other);
        grown.area() - self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_point_is_degenerate() {
        let m = Mbr::from_point(&[1.0, 2.0]);
        assert_eq!(m.min(), &[1.0, 2.0]);
        assert_eq!(m.max(), &[1.0, 2.0]);
        assert_eq!(m.area(), 0.0);
        assert!(m.contains_point(&[1.0, 2.0]));
    }

    #[test]
    fn from_points_covers_all() {
        let coords = [0.0, 0.0, 2.0, 3.0, -1.0, 1.0];
        let m = Mbr::from_points(&coords, 2).unwrap();
        assert_eq!(m.min(), &[-1.0, 0.0]);
        assert_eq!(m.max(), &[2.0, 3.0]);
        for row in coords.chunks_exact(2) {
            assert!(m.contains_point(row));
        }
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Mbr::from_points(&[], 2).is_none());
    }

    #[test]
    fn expand_is_monotone() {
        let mut m = Mbr::from_point(&[0.0, 0.0]);
        m.expand_to_point(&[1.0, -1.0]);
        assert!(m.contains_point(&[0.5, -0.5]));
        assert!(!m.contains_point(&[2.0, 0.0]));
    }

    #[test]
    fn intersects_shared_edge_counts() {
        let a = Mbr::from_points(&[0.0, 0.0, 1.0, 1.0], 2).unwrap();
        let b = Mbr::from_points(&[1.0, 0.0, 2.0, 1.0], 2).unwrap();
        assert!(a.intersects(&b));
        let c = Mbr::from_points(&[1.1, 0.0, 2.0, 1.0], 2).unwrap();
        assert!(!a.intersects(&c));
    }

    #[test]
    fn min_dist_zero_inside_exact_outside() {
        let m = Mbr::from_points(&[0.0, 0.0, 2.0, 2.0], 2).unwrap();
        assert_eq!(m.min_dist_to_point(&[1.0, 1.0]), 0.0);
        assert_eq!(m.min_dist_to_point(&[3.0, 1.0]), 1.0);
        // corner case: distance to nearest corner
        assert!((m.min_dist_to_point(&[3.0, 3.0]) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ball_intersection_boundary() {
        let m = Mbr::from_points(&[0.0, 0.0, 1.0, 1.0], 2).unwrap();
        assert!(m.intersects_ball(&[2.0, 0.5], 1.0));
        assert!(!m.intersects_ball(&[2.0, 0.5], 0.999_999));
    }

    #[test]
    fn enlargement_zero_for_contained() {
        let a = Mbr::from_points(&[0.0, 0.0, 4.0, 4.0], 2).unwrap();
        let b = Mbr::from_points(&[1.0, 1.0, 2.0, 2.0], 2).unwrap();
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn area_of_unit_cube() {
        let m = Mbr::from_points(&[0.0, 0.0, 0.0, 1.0, 1.0, 1.0], 3).unwrap();
        assert_eq!(m.area(), 1.0);
    }
}
