//! Euclidean distance kernels over row-major point slices.
//!
//! Points are `&[f64]` slices of equal dimensionality. The squared variants
//! are the hot path — every neighborhood test in the reproduction compares
//! squared distances against `ε²` to avoid the square root.

/// Squared Euclidean distance `‖a − b‖²`.
///
/// # Panics
/// Debug-asserts equal dimensionality.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance `‖a − b‖`.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Whether `b` lies within the closed `radius`-ball around `a`
/// (`‖a − b‖ ≤ radius`), computed without a square root.
#[inline]
pub fn within(a: &[f64], b: &[f64], radius: f64) -> bool {
    squared_euclidean(a, b) <= radius * radius
}

/// View point `i` of a row-major `n × dim` coordinate array.
///
/// # Panics
/// Panics if the slice does not contain row `i`.
#[inline]
pub fn row(coords: &[f64], dim: usize, i: usize) -> &[f64] {
    &coords[i * dim..(i + 1) * dim]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_and_plain_agree() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(squared_euclidean(&a, &b), 25.0);
        assert_eq!(euclidean(&a, &b), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = [1.5, -2.0, 7.25];
        assert_eq!(squared_euclidean(&p, &p), 0.0);
        assert!(within(&p, &p, 0.0));
    }

    #[test]
    fn within_is_closed_ball() {
        let a = [0.0];
        let b = [2.0];
        assert!(within(&a, &b, 2.0));
        assert!(!within(&a, &b, 1.999_999));
    }

    #[test]
    fn row_indexes_row_major_storage() {
        let coords = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(row(&coords, 2, 0), &[1.0, 2.0]);
        assert_eq!(row(&coords, 2, 2), &[5.0, 6.0]);
        assert_eq!(row(&coords, 3, 1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn symmetric() {
        let a = [0.3, 0.9, -1.0];
        let b = [2.0, -0.5, 0.25];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
    }
}
