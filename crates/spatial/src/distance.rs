//! Euclidean distance kernels over row-major point slices.
//!
//! Points are `&[f64]` slices of equal dimensionality. The squared variants
//! are the hot path — every neighborhood test in the reproduction compares
//! squared distances against `ε²` to avoid the square root.

/// Squared Euclidean distance `‖a − b‖²`.
///
/// # Panics
/// Debug-asserts equal dimensionality.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance `‖a − b‖`.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Blocked 4-lane squared Euclidean distance: four per-dimension partial
/// sums folded `((l₀+l₁)+l₂)+l₃` at the end, plus a sequential tail.
///
/// The reduction order is **fixed** (never data- or thread-dependent) but
/// *different* from [`squared_euclidean`]'s sequential chain, so the two
/// may differ in the last bits. Use this where throughput matters and the
/// caller's tolerance covers reassociation (benchmark kernels, scoring);
/// use [`within_sq`] for predicates, which stays exact.
#[inline]
pub fn squared_euclidean_lanes(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f64; 4];
    let (a4, a_tail) = a.split_at(a.len() / 4 * 4);
    let (b4, b_tail) = b.split_at(a4.len());
    for (x, y) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        for j in 0..4 {
            let d = x[j] - y[j];
            lanes[j] += d * d;
        }
    }
    let mut acc = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
    for (x, y) in a_tail.iter().zip(b_tail) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Whether `b` lies within the closed `radius`-ball around `a`
/// (`‖a − b‖ ≤ radius`), computed without a square root.
#[inline]
pub fn within(a: &[f64], b: &[f64], radius: f64) -> bool {
    within_sq(a, b, radius * radius)
}

/// Whether `‖a − b‖² ≤ radius_sq`, with a blocked early exit: the partial
/// sum is tested against the threshold every four dimensions, so scans
/// against far-away points bail out after a fraction of the row.
///
/// **Exact**: the accumulation is the same sequential chain as
/// [`squared_euclidean`], and partial sums of non-negative terms are
/// monotone under round-to-nearest — once a prefix exceeds `radius_sq` the
/// full sum does too. The verdict is therefore always identical to
/// `squared_euclidean(a, b) <= radius_sq`, bit for bit.
#[inline]
pub fn within_sq(a: &[f64], b: &[f64], radius_sq: f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    let mut i = 0;
    while i + 4 <= a.len() {
        for j in i..i + 4 {
            let d = a[j] - b[j];
            acc += d * d;
        }
        if acc > radius_sq {
            return false;
        }
        i += 4;
    }
    for j in i..a.len() {
        let d = a[j] - b[j];
        acc += d * d;
    }
    acc <= radius_sq
}

/// View point `i` of a row-major `n × dim` coordinate array.
///
/// # Panics
/// Panics if the slice does not contain row `i`.
#[inline]
pub fn row(coords: &[f64], dim: usize, i: usize) -> &[f64] {
    &coords[i * dim..(i + 1) * dim]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_and_plain_agree() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(squared_euclidean(&a, &b), 25.0);
        assert_eq!(euclidean(&a, &b), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = [1.5, -2.0, 7.25];
        assert_eq!(squared_euclidean(&p, &p), 0.0);
        assert!(within(&p, &p, 0.0));
    }

    #[test]
    fn within_is_closed_ball() {
        let a = [0.0];
        let b = [2.0];
        assert!(within(&a, &b, 2.0));
        assert!(!within(&a, &b, 1.999_999));
    }

    #[test]
    fn row_indexes_row_major_storage() {
        let coords = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(row(&coords, 2, 0), &[1.0, 2.0]);
        assert_eq!(row(&coords, 2, 2), &[5.0, 6.0]);
        assert_eq!(row(&coords, 3, 1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn within_sq_agrees_with_full_distance_on_pseudo_random_rows() {
        // deterministic pseudo-random rows across the blocked-exit widths
        for dim in 1..=11usize {
            for seed in 0..40u64 {
                let gen = |k: u64| {
                    ((seed * 131 + k).wrapping_mul(2654435761) % 2000) as f64 / 1000.0 - 1.0
                };
                let a: Vec<f64> = (0..dim as u64).map(gen).collect();
                let b: Vec<f64> = (0..dim as u64).map(|k| gen(k + 7919)).collect();
                let full = squared_euclidean(&a, &b);
                for r_sq in [0.0, full * 0.5, full, full * 1.5, f64::next_down(full)] {
                    assert_eq!(
                        within_sq(&a, &b, r_sq),
                        full <= r_sq,
                        "dim {dim} seed {seed} r² {r_sq}"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_variant_is_close_and_deterministic() {
        for dim in 1..=11usize {
            let a: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.61).cos()).collect();
            let lanes = squared_euclidean_lanes(&a, &b);
            assert!(
                (lanes - squared_euclidean(&a, &b)).abs() <= 1e-12,
                "dim {dim}"
            );
            assert_eq!(lanes.to_bits(), squared_euclidean_lanes(&a, &b).to_bits());
        }
    }

    #[test]
    fn symmetric() {
        let a = [0.3, 0.9, -1.0];
        let b = [2.0, -0.5, 0.25];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
    }
}
