//! # egg-sync — EGG-SynC reproduction suite
//!
//! Umbrella crate for the reproduction of **"EGG-SynC: Exact
//! GPU-parallelized Grid-based Clustering by Synchronization"**
//! (Jørgensen & Assent, EDBT 2023). It re-exports the workspace's public
//! API and hosts the runnable examples and cross-crate integration tests.
//!
//! * [`core`] (`egg-sync-core`) — the algorithms: [`core::EggSync`] and
//!   the baselines [`core::Sync`], [`core::FSync`], [`core::MpSync`],
//!   [`core::GpuSync`], plus the CPU oracle [`core::ExactSync`].
//! * [`data`] (`egg-data`) — datasets, generators, UCI proxies, metrics.
//! * [`gpu`] (`egg-gpu-sim`) — the CUDA-style execution-model simulator.
//! * [`spatial`] (`egg-spatial`) — MBRs and the R-Tree substrate.
//!
//! ```
//! use egg_sync::prelude::*;
//!
//! let (data, _) = GaussianSpec { n: 500, ..GaussianSpec::default() }
//!     .generate_normalized();
//! let clustering = EggSync::new(0.05).cluster(&data);
//! println!("{} clusters in {} iterations", clustering.num_clusters, clustering.iterations);
//! ```

#![warn(missing_docs)]

pub use egg_data as data;
pub use egg_gpu_sim as gpu;
pub use egg_spatial as spatial;
pub use egg_sync_core as core;

/// One-stop imports for applications.
pub mod prelude {
    pub use egg_data::generator::GaussianSpec;
    pub use egg_data::{catalog::UciDataset, metrics, Dataset};
    pub use egg_sync_core::{
        ClusterAlgorithm, Clustering, Dbscan, EggSync, ExactSync, FSync, GpuSync, KMeans, MpSync,
        Sync, SyncParams,
    };
}
