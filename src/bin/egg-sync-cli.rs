//! `egg-sync-cli` — command-line front end for the EGG-SynC suite.
//!
//! ```text
//! egg-sync-cli cluster  --input points.csv [--epsilon 0.05 | --auto-epsilon]
//!                       [--algorithm egg|exact|sync|fsync|mpsync|gpusync]
//!                       [--no-normalize] [--output labels.csv]
//! egg-sync-cli outliers --input points.csv --epsilon 0.05 [--threshold 0.9]
//! egg-sync-cli generate --n 1000 [--dim 2] [--clusters 5] [--std 5.0]
//!                       [--seed 42] --output points.csv
//! ```
//!
//! Input is headerless CSV, one point per line. `cluster --output` writes
//! the input coordinates with the cluster label appended as a final
//! column.

use std::process::ExitCode;

use egg_sync::core::extensions::epsilon::{default_ladder, select_epsilon};
use egg_sync::core::extensions::outlier::detect_outliers;
use egg_sync::data::{generator::GaussianSpec, io, Dataset};
use egg_sync::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("outliers") => cmd_outliers(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run 'egg-sync-cli --help' for usage");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "egg-sync-cli — exact clustering by synchronization (EGG-SynC)\n\n\
         USAGE:\n\
         \x20 egg-sync-cli cluster  --input <csv> [--epsilon <e> | --auto-epsilon]\n\
         \x20                       [--algorithm egg|exact|sync|fsync|mpsync|gpusync]\n\
         \x20                       [--no-normalize] [--output <csv>]\n\
         \x20 egg-sync-cli outliers --input <csv> --epsilon <e> [--threshold <t>]\n\
         \x20 egg-sync-cli generate --n <count> [--dim <d>] [--clusters <k>]\n\
         \x20                       [--std <sigma>] [--seed <s>] --output <csv>\n"
    );
}

/// Minimal `--flag value` / `--flag` parser.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn value(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("cannot parse {name} value '{raw}'")),
        }
    }

    fn present(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }
}

fn load_input(flags: &Flags, normalize: bool) -> Result<Dataset, String> {
    let path = flags.value("--input").ok_or("--input <csv> is required")?;
    let data = io::read_csv_file(path).map_err(|e| format!("reading {path}: {e}"))?;
    if data.is_empty() {
        return Err(format!("{path} contains no points"));
    }
    Ok(if normalize { data.normalized() } else { data })
}

fn make_algorithm(name: &str, epsilon: f64) -> Result<Box<dyn ClusterAlgorithm>, String> {
    Ok(match name {
        "egg" => Box::new(EggSync::new(epsilon)),
        "exact" => Box::new(ExactSync::new(epsilon)),
        "sync" => Box::new(Sync::new(epsilon)),
        "fsync" => Box::new(FSync::new(epsilon)),
        "mpsync" => Box::new(MpSync::new(epsilon)),
        "gpusync" => Box::new(GpuSync::new(epsilon)),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn cmd_cluster(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let data = load_input(&flags, !flags.present("--no-normalize"))?;
    let algorithm = flags.value("--algorithm").unwrap_or("egg");

    let clustering = if flags.present("--auto-epsilon") {
        if algorithm != "egg" {
            return Err("--auto-epsilon only supports the default 'egg' algorithm".into());
        }
        let selection = select_epsilon(&data, &default_ladder());
        println!("auto-selected epsilon = {}", selection.best_epsilon);
        for c in &selection.candidates {
            println!(
                "  candidate ε={:<7} score {:>14.1} bits  {} clusters, {} outliers",
                c.epsilon, c.score, c.clusters, c.outliers
            );
        }
        selection.best
    } else {
        let epsilon: f64 = flags
            .parsed("--epsilon")?
            .ok_or("--epsilon <e> (or --auto-epsilon) is required")?;
        if epsilon <= 0.0 {
            return Err("--epsilon must be positive".into());
        }
        make_algorithm(algorithm, epsilon)?.cluster(&data)
    };

    println!(
        "{} points → {} clusters in {} iterations ({}converged, {:.3}s)",
        data.len(),
        clustering.num_clusters,
        clustering.iterations,
        if clustering.converged { "" } else { "NOT " },
        clustering.trace.total_seconds
    );
    let mut sizes = clustering.cluster_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest clusters: {:?}", &sizes[..sizes.len().min(10)]);
    println!("outliers (singletons): {}", clustering.outliers().len());

    if let Some(path) = flags.value("--output") {
        io::write_csv_file(path, &data, Some(&clustering.labels))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("labels written to {path}");
    }
    Ok(())
}

fn cmd_outliers(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let data = load_input(&flags, !flags.present("--no-normalize"))?;
    let epsilon: f64 = flags
        .parsed("--epsilon")?
        .ok_or("--epsilon <e> is required")?;
    let threshold: f64 = flags.parsed("--threshold")?.unwrap_or(0.9);
    let detection = detect_outliers(&data, epsilon);
    let hits = detection.outliers(threshold);
    println!(
        "{} points, {} clusters; {} outliers at factor ≥ {threshold}:",
        data.len(),
        detection.clustering.num_clusters,
        hits.len()
    );
    for s in hits.iter().take(50) {
        println!("  point {:>6}  factor {:.3}", s.point, s.factor);
    }
    if hits.len() > 50 {
        println!("  … and {} more", hits.len() - 50);
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let spec = GaussianSpec {
        n: flags.parsed("--n")?.ok_or("--n <count> is required")?,
        dim: flags.parsed("--dim")?.unwrap_or(2),
        clusters: flags.parsed("--clusters")?.unwrap_or(5),
        std_dev: flags.parsed("--std")?.unwrap_or(5.0),
        seed: flags.parsed("--seed")?.unwrap_or(42),
        ..GaussianSpec::default()
    };
    let path = flags
        .value("--output")
        .ok_or("--output <csv> is required")?;
    let (data, labels) = spec.generate_normalized();
    let with_labels = flags.present("--with-labels");
    io::write_csv_file(path, &data, with_labels.then_some(labels.as_slice()))
        .map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "wrote {} points ({} dims, {} clusters) to {path}",
        data.len(),
        data.dim(),
        spec.clusters
    );
    Ok(())
}
