#!/usr/bin/env python3
"""Perf-trajectory check over the cross-PR benchmark ledger BENCH_egg.json.

The ledger is a JSON array of rows appended by the bench harnesses; each
row carries the workload shape (experiment, method, n, d, threads) and a
per-stage nanosecond breakdown. This script groups rows by workload
shape, compares the latest row of every group against the previous one,
and emits a GitHub Actions `::warning::` annotation whenever a tracked
stage regressed by more than the threshold (default 15%). With
--fail-over PCT, any regression exceeding PCT additionally fails the
job — the hard backstop behind the soft warning threshold.

Stage timings below MIN_STAGE_NS are skipped: on CI-scale quick runs a
sub-millisecond stage is dominated by scheduler noise and any ratio on
it is meaningless.

Every row is schema-validated before the diff: known stage names only,
non-negative integer nanosecond timings, and (when rows carry the
optional timestamp_ms) monotone non-decreasing timestamps per group —
rows appended out of order would make the latest-two diff compare the
wrong pair.

Exit codes: 0 on success (warnings do not fail the job); 1 when the
ledger is missing, malformed, fails schema validation, or — with
--require-rows — empty, so the "perf ledger silently stopped recording"
failure mode of PR 2 is loud; 1 when a --fail-over regression fired.

Usage: check_bench_regression.py [--threshold 0.15] [--fail-over 0.40]
                                 [--require-rows] [PATH]
"""

import json
import sys

TRACKED_STAGES = (
    "allocating",
    "build_structure",
    "update",
    "extra_check",
    "clustering",
    "free_memory",
    "halo_exchange",
    # diagnostic dispatch/overlap clocks (host-backend rows only): time
    # inside the executor's dispatch machinery, and sideline-worker time
    # spent on halo bookkeeping concurrently with interior compute
    "exec_dispatch",
    "halo_overlap",
    # simulated-device clock of the same stages (GPU-backed rows only).
    # These are deterministic — the cost model is a pure function of the
    # kernels' operation counts — so regressions on them are real perf
    # changes (more launches, more words moved), never scheduler noise.
    "sim_allocating",
    "sim_build_structure",
    "sim_update",
    "sim_extra_check",
    "sim_clustering",
)
MIN_STAGE_NS = 1_000_000  # ignore sub-millisecond stages: pure noise on CI

# Validated like any other stage but exempt from the regression diff:
# halo_overlap measures time *hidden* behind interior compute, so growth
# there means more bookkeeping was successfully overlapped — the opposite
# of a regression. (exec_dispatch stays diffed: it is pure overhead.)
DIFF_EXEMPT_STAGES = frozenset({"halo_overlap"})


def group_key(row):
    return (
        row.get("experiment"),
        row.get("method"),
        row.get("n"),
        row.get("d"),
        row.get("threads"),
    )


def validate_rows(rows):
    """Schema-check ledger rows; return a list of error messages.

    Catches the quiet corruption modes a diff-based checker would
    otherwise misread: a renamed stage (its timings silently drop out of
    the comparison), a stage recorded in the wrong unit (seconds instead
    of nanoseconds parse as sub-MIN_STAGE_NS noise), and rows appended
    out of order (the "latest two" diff compares the wrong pair). The
    timestamp is optional — older ledgers predate it — but when present
    it must be a non-negative integer and non-decreasing per group.
    """
    errors = []
    last_ts = {}
    for i, r in enumerate(rows):
        where = f"row {i}"
        if not isinstance(r, dict):
            errors.append(f"{where}: not an object")
            continue
        if isinstance(r.get("experiment"), str) and isinstance(r.get("method"), str):
            where = f"row {i} ({r['experiment']}/{r['method']})"
        for field in ("experiment", "method"):
            if not isinstance(r.get(field), str) or not r.get(field):
                errors.append(f"{where}: '{field}' must be a non-empty string")
        for field in ("n", "d", "threads", "iterations", "wall_ns"):
            v = r.get(field)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(f"{where}: '{field}' must be a non-negative integer")
        stages = r.get("stages_ns")
        if not isinstance(stages, dict):
            errors.append(f"{where}: 'stages_ns' must be an object")
        else:
            for stage, v in stages.items():
                if stage not in TRACKED_STAGES:
                    errors.append(
                        f"{where}: unknown stage '{stage}' "
                        f"(tracked: {', '.join(TRACKED_STAGES)})"
                    )
                elif not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    errors.append(
                        f"{where}: stage '{stage}' must be non-negative "
                        "integer nanoseconds"
                    )
        ts = r.get("timestamp_ms")
        if ts is not None:
            if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
                errors.append(
                    f"{where}: 'timestamp_ms' must be a non-negative integer"
                )
            else:
                key = group_key(r)
                if key in last_ts and ts < last_ts[key]:
                    errors.append(
                        f"{where}: timestamp_ms {ts} goes backwards within "
                        f"its group (previous row had {last_ts[key]})"
                    )
                last_ts[key] = ts
    return errors


def check(rows, threshold):
    """Return a list of (ratio, message) pairs for >threshold regressions.

    ratio is after/before, so callers can re-filter against a harder
    limit (--fail-over) without re-walking the ledger.
    """
    groups = {}
    for row in rows:
        groups.setdefault(group_key(row), []).append(row)
    findings = []
    for key, series in groups.items():
        if len(series) < 2:
            continue
        prev, last = series[-2], series[-1]
        prev_stages = prev.get("stages_ns", {})
        last_stages = last.get("stages_ns", {})
        for stage in TRACKED_STAGES:
            if stage in DIFF_EXEMPT_STAGES:
                continue
            before = prev_stages.get(stage, 0)
            after = last_stages.get(stage, 0)
            if before < MIN_STAGE_NS or after < MIN_STAGE_NS:
                continue
            if after > before * (1.0 + threshold):
                experiment, method, n, d, threads = key
                findings.append((
                    after / before,
                    f"{experiment}/{method} (n={n}, d={d}, t={threads}): "
                    f"stage '{stage}' regressed {after / before:.2f}x "
                    f"({before} ns -> {after} ns)",
                ))
    return findings


def main(argv):
    threshold = 0.15
    fail_over = None
    require_rows = False
    path = "target/paper_results/BENCH_egg.json"
    args = list(argv[1:])
    while args:
        arg = args.pop(0)
        if arg == "--threshold":
            threshold = float(args.pop(0))
        elif arg == "--fail-over":
            fail_over = float(args.pop(0))
        elif arg == "--require-rows":
            require_rows = True
        else:
            path = arg

    try:
        with open(path, encoding="utf-8") as f:
            rows = json.load(f)
    except FileNotFoundError:
        print(f"::error::benchmark ledger {path} not found")
        return 1
    except json.JSONDecodeError as e:
        print(f"::error::benchmark ledger {path} is not valid JSON: {e}")
        return 1
    if not isinstance(rows, list):
        print(f"::error::benchmark ledger {path} is not a JSON array")
        return 1
    if require_rows and not rows:
        print(f"::error::benchmark ledger {path} has zero rows — the bench "
              "harness ran but appended nothing (see append_bench_ledger)")
        return 1

    print(f"{len(rows)} ledger row(s) in {path}")
    schema_errors = validate_rows(rows)
    if schema_errors:
        for message in schema_errors:
            print(f"::error::ledger schema: {message}")
        return 1
    findings = check(rows, threshold)
    failed = False
    for ratio, message in findings:
        if fail_over is not None and ratio > 1.0 + fail_over:
            print(f"::error::{message} (over the {fail_over:.0%} hard limit)")
            failed = True
        else:
            print(f"::warning::{message}")
    if not findings:
        print(f"no stage regressed by more than {threshold:.0%}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
