"""Stdlib unit tests for check_bench_regression.py.

Run from the repository root with:

    python3 -m unittest discover -s scripts
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as cbr


def row(update_ns, experiment="exp", method="m", n=1000, d=4, threads=1):
    return {
        "experiment": experiment,
        "method": method,
        "n": n,
        "d": d,
        "threads": threads,
        "stages_ns": {"update": update_ns},
    }


class CheckTests(unittest.TestCase):
    def test_no_regression_when_last_row_is_faster(self):
        findings = cbr.check([row(50_000_000), row(40_000_000)], 0.15)
        self.assertEqual(findings, [])

    def test_regression_over_threshold_is_reported_with_ratio(self):
        findings = cbr.check([row(50_000_000), row(100_000_000)], 0.15)
        self.assertEqual(len(findings), 1)
        ratio, message = findings[0]
        self.assertAlmostEqual(ratio, 2.0)
        self.assertIn("'update' regressed 2.00x", message)

    def test_regression_under_threshold_is_silent(self):
        findings = cbr.check([row(50_000_000), row(55_000_000)], 0.15)
        self.assertEqual(findings, [])

    def test_sub_millisecond_stages_are_ignored(self):
        findings = cbr.check([row(100_000), row(900_000)], 0.15)
        self.assertEqual(findings, [])

    def test_groups_compare_only_their_own_series(self):
        rows = [
            row(50_000_000, method="a"),
            row(50_000_000, method="b"),
            row(49_000_000, method="a"),
            row(200_000_000, method="b"),
        ]
        findings = cbr.check(rows, 0.15)
        self.assertEqual(len(findings), 1)
        self.assertIn("exp/b", findings[0][1])

    def test_single_row_groups_need_no_baseline(self):
        self.assertEqual(cbr.check([row(50_000_000)], 0.15), [])


class MainTests(unittest.TestCase):
    def run_main(self, rows, *flags):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "BENCH_egg.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump(rows, f)
            return cbr.main(["prog", *flags, path])

    def test_warnings_alone_exit_zero(self):
        code = self.run_main([row(50_000_000), row(100_000_000)])
        self.assertEqual(code, 0)

    def test_fail_over_fails_hard_regressions(self):
        code = self.run_main(
            [row(50_000_000), row(100_000_000)], "--fail-over", "0.40"
        )
        self.assertEqual(code, 1)

    def test_fail_over_keeps_soft_regressions_as_warnings(self):
        # 20% over: warned at the 15% threshold, under the 40% hard limit
        code = self.run_main(
            [row(50_000_000), row(60_000_000)], "--fail-over", "0.40"
        )
        self.assertEqual(code, 0)

    def test_missing_ledger_fails(self):
        self.assertEqual(cbr.main(["prog", "/nonexistent/ledger.json"]), 1)

    def test_require_rows_fails_on_empty_ledger(self):
        self.assertEqual(self.run_main([], "--require-rows"), 1)


if __name__ == "__main__":
    unittest.main()
