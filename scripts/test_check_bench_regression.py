"""Stdlib unit tests for check_bench_regression.py.

Run from the repository root with:

    python3 -m unittest discover -s scripts
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as cbr


def row(update_ns, experiment="exp", method="m", n=1000, d=4, threads=1, ts=None):
    r = {
        "experiment": experiment,
        "method": method,
        "n": n,
        "d": d,
        "threads": threads,
        "iterations": 5,
        "wall_ns": update_ns,
        "stages_ns": {"update": update_ns},
    }
    if ts is not None:
        r["timestamp_ms"] = ts
    return r


class CheckTests(unittest.TestCase):
    def test_no_regression_when_last_row_is_faster(self):
        findings = cbr.check([row(50_000_000), row(40_000_000)], 0.15)
        self.assertEqual(findings, [])

    def test_regression_over_threshold_is_reported_with_ratio(self):
        findings = cbr.check([row(50_000_000), row(100_000_000)], 0.15)
        self.assertEqual(len(findings), 1)
        ratio, message = findings[0]
        self.assertAlmostEqual(ratio, 2.0)
        self.assertIn("'update' regressed 2.00x", message)

    def test_regression_under_threshold_is_silent(self):
        findings = cbr.check([row(50_000_000), row(55_000_000)], 0.15)
        self.assertEqual(findings, [])

    def test_sub_millisecond_stages_are_ignored(self):
        findings = cbr.check([row(100_000), row(900_000)], 0.15)
        self.assertEqual(findings, [])

    def test_groups_compare_only_their_own_series(self):
        rows = [
            row(50_000_000, method="a"),
            row(50_000_000, method="b"),
            row(49_000_000, method="a"),
            row(200_000_000, method="b"),
        ]
        findings = cbr.check(rows, 0.15)
        self.assertEqual(len(findings), 1)
        self.assertIn("exp/b", findings[0][1])

    def test_single_row_groups_need_no_baseline(self):
        self.assertEqual(cbr.check([row(50_000_000)], 0.15), [])


class ValidateTests(unittest.TestCase):
    def test_well_formed_rows_pass(self):
        rows = [row(50_000_000, ts=100), row(60_000_000, ts=200)]
        self.assertEqual(cbr.validate_rows(rows), [])

    def test_rows_without_timestamps_pass(self):
        # older ledgers predate timestamp_ms; the field is optional
        self.assertEqual(cbr.validate_rows([row(50_000_000)]), [])

    def test_unknown_stage_name_is_an_error(self):
        bad = row(50_000_000)
        bad["stages_ns"]["warmup"] = 1_000_000
        errors = cbr.validate_rows([bad])
        self.assertEqual(len(errors), 1)
        self.assertIn("unknown stage 'warmup'", errors[0])

    def test_non_integer_stage_timing_is_an_error(self):
        bad = row(50_000_000)
        bad["stages_ns"]["update"] = 0.05  # seconds, not nanoseconds
        errors = cbr.validate_rows([bad])
        self.assertEqual(len(errors), 1)
        self.assertIn("nanoseconds", errors[0])

    def test_missing_required_field_is_an_error(self):
        bad = row(50_000_000)
        del bad["n"]
        errors = cbr.validate_rows([bad])
        self.assertEqual(len(errors), 1)
        self.assertIn("'n'", errors[0])

    def test_backwards_timestamp_within_group_is_an_error(self):
        rows = [row(50_000_000, ts=200), row(60_000_000, ts=100)]
        errors = cbr.validate_rows(rows)
        self.assertEqual(len(errors), 1)
        self.assertIn("goes backwards", errors[0])

    def test_timestamps_only_ordered_within_their_group(self):
        # interleaved groups may have non-monotone global order
        rows = [
            row(50_000_000, method="a", ts=200),
            row(50_000_000, method="b", ts=100),
            row(51_000_000, method="a", ts=300),
            row(51_000_000, method="b", ts=150),
        ]
        self.assertEqual(cbr.validate_rows(rows), [])


class MainTests(unittest.TestCase):
    def run_main(self, rows, *flags):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "BENCH_egg.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump(rows, f)
            return cbr.main(["prog", *flags, path])

    def test_warnings_alone_exit_zero(self):
        code = self.run_main([row(50_000_000), row(100_000_000)])
        self.assertEqual(code, 0)

    def test_fail_over_fails_hard_regressions(self):
        code = self.run_main(
            [row(50_000_000), row(100_000_000)], "--fail-over", "0.40"
        )
        self.assertEqual(code, 1)

    def test_fail_over_keeps_soft_regressions_as_warnings(self):
        # 20% over: warned at the 15% threshold, under the 40% hard limit
        code = self.run_main(
            [row(50_000_000), row(60_000_000)], "--fail-over", "0.40"
        )
        self.assertEqual(code, 0)

    def test_missing_ledger_fails(self):
        self.assertEqual(cbr.main(["prog", "/nonexistent/ledger.json"]), 1)

    def test_require_rows_fails_on_empty_ledger(self):
        self.assertEqual(self.run_main([], "--require-rows"), 1)

    def test_schema_errors_fail_the_run(self):
        bad = row(50_000_000)
        bad["stages_ns"]["renamed_stage"] = 5_000_000
        self.assertEqual(self.run_main([bad]), 1)

    def test_halo_exchange_is_a_tracked_stage(self):
        # rows from sharded runs carry the halo-exchange stage; the schema
        # whitelist must accept it and the gate must diff it
        ok = row(50_000_000)
        ok["stages_ns"]["halo_exchange"] = 5_000_000
        self.assertEqual(self.run_main([ok]), 0)

    def test_halo_exchange_regression_is_caught(self):
        before = row(50_000_000, ts=1)
        before["stages_ns"]["halo_exchange"] = 10_000_000
        after = row(50_000_000, ts=2)
        after["stages_ns"]["halo_exchange"] = 20_000_000
        self.assertEqual(self.run_main([before, after], "--fail-over", "0.40"), 1)

    def test_absent_halo_exchange_stays_valid(self):
        # pre-sharding rows have no halo_exchange key: the gate must not
        # flag them (absent keys read as 0, below the noise floor)
        before = row(50_000_000, ts=1)
        after = row(52_000_000, ts=2)
        after["stages_ns"]["halo_exchange"] = 5_000_000
        self.assertEqual(self.run_main([before, after]), 0)

    def test_dispatch_and_overlap_are_accepted_stages(self):
        # host-backend rows now carry the executor-dispatch and halo-
        # overlap diagnostic clocks; the schema whitelist must accept both
        ok = row(50_000_000)
        ok["stages_ns"]["exec_dispatch"] = 5_000_000
        ok["stages_ns"]["halo_overlap"] = 5_000_000
        self.assertEqual(self.run_main([ok]), 0)

    def test_exec_dispatch_regression_is_caught(self):
        # dispatch time is pure overhead — the stage the worker pool
        # exists to shrink — so a jump must fail the gate
        before = row(50_000_000, ts=1)
        before["stages_ns"]["exec_dispatch"] = 10_000_000
        after = row(50_000_000, ts=2)
        after["stages_ns"]["exec_dispatch"] = 20_000_000
        self.assertEqual(self.run_main([before, after], "--fail-over", "0.40"), 1)

    def test_halo_overlap_growth_is_not_a_regression(self):
        # overlap time growing means more bookkeeping was hidden behind
        # interior compute — exempt from the diff by design
        before = row(50_000_000, ts=1)
        before["stages_ns"]["halo_overlap"] = 10_000_000
        after = row(50_000_000, ts=2)
        after["stages_ns"]["halo_overlap"] = 40_000_000
        self.assertEqual(self.run_main([before, after], "--fail-over", "0.40"), 0)

    def test_non_array_ledger_fails(self):
        self.assertEqual(self.run_main({"rows": []}), 1)

    def test_sim_stages_are_tracked(self):
        # GPU-backed rows carry the simulated-device clock of each stage;
        # the schema whitelist must accept all of them
        ok = row(50_000_000)
        for stage in ("sim_allocating", "sim_build_structure", "sim_update",
                      "sim_extra_check", "sim_clustering"):
            ok["stages_ns"][stage] = 5_000_000
        self.assertEqual(self.run_main([ok]), 0)

    def test_sim_update_regression_is_caught(self):
        # the simulated clock is deterministic, so a jump means the kernel
        # pipeline itself got more expensive — the gate must fail it
        before = row(50_000_000, ts=1)
        before["stages_ns"]["sim_update"] = 10_000_000
        after = row(50_000_000, ts=2)
        after["stages_ns"]["sim_update"] = 20_000_000
        self.assertEqual(self.run_main([before, after], "--fail-over", "0.40"), 1)

    def test_rows_without_sim_stages_stay_valid(self):
        # host-backend rows have no sim_* keys: absent keys read as 0 and
        # stay below the noise floor, so mixed ledgers diff cleanly
        before = row(50_000_000, ts=1)
        after = row(52_000_000, ts=2)
        after["stages_ns"]["sim_update"] = 5_000_000
        self.assertEqual(self.run_main([before, after]), 0)


if __name__ == "__main__":
    unittest.main()
